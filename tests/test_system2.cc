/**
 * @file
 * Second-wave System tests: phase quiescing, overlay-aware prefetch,
 * zero-line reclamation, the full-page-segment variant, ORE
 * serialization, multi-process isolation, fork chains, and a randomized
 * consistency fuzz of the access semantics against a host-side shadow
 * model.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/random.hh"
#include "system/system.hh"

namespace ovl
{
namespace
{

constexpr Addr kBase = 0x100000;

TEST(SystemQuiesce, TimingRestartsCleanAfterSetupTraffic)
{
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    sys.mapAnon(asid, kBase, 64 * kPageSize);

    // Setup traffic far into the future.
    Tick t = 0;
    for (unsigned i = 0; i < 2000; ++i)
        t = sys.access(asid, kBase + (i % 4096) * kLineSize, true, t);
    ASSERT_GT(t, 100'000u);

    sys.quiesce();
    // A fresh access at tick 0 must not inherit the setup backlog: it is
    // at worst one cold DRAM access.
    sys.caches().flushAll(0);
    sys.quiesce();
    Tick lat = sys.access(asid, kBase, false, 0) - 0;
    EXPECT_LT(lat, 2000u);
}

TEST(SystemQuiesce, FunctionalStateSurvives)
{
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    sys.mapZeroOverlay(asid, kBase, kPageSize);
    double v = 8.5;
    sys.poke(asid, kBase, &v, 8);
    sys.quiesce();
    double got = 0;
    sys.peek(asid, kBase, &got, 8);
    EXPECT_EQ(got, 8.5);
    EXPECT_TRUE(sys.lineInOverlay(asid, kBase));
}

TEST(SystemPrefetch, OverlayPagePrefetchFillsL3)
{
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    sys.mapZeroOverlay(asid, kBase, kPageSize);
    Tick t = 0;
    for (unsigned l = 0; l < 8; ++l)
        t = sys.access(asid, kBase + l * kLineSize, true, t);
    sys.caches().flushAll(t);
    sys.quiesce();

    sys.prefetchOverlayPage(asid, kBase, 0);
    // A demand read now hits L3 instead of going to the OMS.
    AccessOutcome out;
    sys.access(asid, kBase, false, 1000, &out);
    EXPECT_EQ(out.level, HitLevel::L3);
}

TEST(SystemReclaim, ZeroLineIsReclaimed)
{
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    sys.mapZeroOverlay(asid, kBase, kPageSize);
    double v = 4.0;
    sys.poke(asid, kBase + 8, &v, 8);
    ASSERT_TRUE(sys.lineInOverlay(asid, kBase));

    // Not all-zero yet: reclamation refuses.
    EXPECT_FALSE(sys.reclaimZeroLine(asid, kBase, 0));

    double zero = 0.0;
    sys.poke(asid, kBase + 8, &zero, 8);
    EXPECT_TRUE(sys.reclaimZeroLine(asid, kBase, 0));
    EXPECT_FALSE(sys.lineInOverlay(asid, kBase));
    // Reads still see zero (now from the zero page).
    double got = 1.0;
    sys.peek(asid, kBase + 8, &got, 8);
    EXPECT_EQ(got, 0.0);
    // The whole overlay died with its last line: OMT entry gone.
    EXPECT_FALSE(sys.overlayManager().hasOverlay(
        overlay_addr::pageFromVirtual(asid, pageNumber(kBase))));
}

TEST(SystemReclaim, RefusesOnPrivatePages)
{
    // Reclamation only applies to zero-backed pages: for a private page
    // the physical line may be non-zero underneath.
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    sys.mapAnon(asid, kBase, kPageSize);
    std::uint64_t orig = 77;
    sys.poke(asid, kBase, &orig, 8);
    Pte *pte = sys.vmm().resolve(asid, pageNumber(kBase));
    pte->cow = true;
    pte->overlayEnabled = true;
    std::uint64_t zero = 0;
    sys.poke(asid, kBase, &zero, 8); // overlaying write of zeroes
    ASSERT_TRUE(sys.lineInOverlay(asid, kBase));
    EXPECT_FALSE(sys.reclaimZeroLine(asid, kBase, 0));
    std::uint64_t got = 1;
    sys.peek(asid, kBase, &got, 8);
    EXPECT_EQ(got, 0u); // overlay still masks the stale 77
}

TEST(SystemFullPageSegments, TradeCapacityForSimplicity)
{
    SystemConfig cfg;
    cfg.overlay.fullPageSegments = true;
    System sys(cfg);
    Asid asid = sys.createProcess();
    sys.mapZeroOverlay(asid, kBase, kPageSize);
    Tick t = sys.access(asid, kBase, true, 0);
    sys.caches().flushAll(t);
    // One line, but a whole 4 KB segment (§4.4's simple variant).
    EXPECT_EQ(sys.overlayManager().omsBytesInUse(), kPageSize);
    EXPECT_EQ(sys.overlayManager().migrations(), 0u);
}

TEST(SystemOre, DenseBurstsSerializeAtTheOrderingPoint)
{
    // 16 back-to-back overlaying writes to one page: each waits for the
    // previous ORE, so the total grows ~linearly in the burst length.
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    sys.mapZeroOverlay(asid, kBase, kPageSize);
    sys.access(asid, kBase + 63 * kLineSize, false, 0); // warm TLB

    Tick start = 100'000;
    Tick t = start;
    for (unsigned l = 0; l < 16; ++l)
        t = sys.access(asid, kBase + l * kLineSize, true, t);
    Tick burst = t - start;
    EXPECT_GE(burst, 16 * sys.config().oreMessageCycles);
}

TEST(SystemIsolation, ProcessesDoNotAlias)
{
    System sys((SystemConfig()));
    Asid a = sys.createProcess();
    Asid b = sys.createProcess();
    sys.mapZeroOverlay(a, kBase, kPageSize);
    sys.mapZeroOverlay(b, kBase, kPageSize);
    double va = 1.0, vb = 2.0;
    sys.poke(a, kBase, &va, 8);
    sys.poke(b, kBase, &vb, 8);
    double got = 0;
    sys.peek(a, kBase, &got, 8);
    EXPECT_EQ(got, 1.0);
    sys.peek(b, kBase, &got, 8);
    EXPECT_EQ(got, 2.0); // no overlay synonym (§4.1 constraint)
}

TEST(SystemFork, GrandchildrenInheritAndDiverge)
{
    System sys((SystemConfig()));
    Asid gen0 = sys.createProcess();
    sys.mapAnon(gen0, kBase, kPageSize);
    std::uint64_t v0 = 10;
    sys.poke(gen0, kBase, &v0, 8);

    Tick t = 0;
    Asid gen1 = sys.fork(gen0, ForkMode::OverlayOnWrite, 0, &t);
    std::uint64_t v1 = 20;
    sys.write(gen1, kBase, &v1, 8, t);

    Asid gen2 = sys.fork(gen1, ForkMode::OverlayOnWrite, t, &t);
    std::uint64_t got = 0;
    sys.peek(gen2, kBase, &got, 8);
    EXPECT_EQ(got, 20u); // grandchild sees gen1's overlay (copied, §4.1)

    std::uint64_t v2 = 30;
    sys.write(gen2, kBase, &v2, 8, t);
    sys.peek(gen0, kBase, &got, 8);
    EXPECT_EQ(got, 10u);
    sys.peek(gen1, kBase, &got, 8);
    EXPECT_EQ(got, 20u);
    sys.peek(gen2, kBase, &got, 8);
    EXPECT_EQ(got, 30u);
}

TEST(SystemEquivalence, OverlaysOffMatchesOverlaysOnFunctionally)
{
    // The same deterministic write/read script must produce identical
    // memory contents with overlays on and off (§3.3: an optional
    // feature, not a semantic change).
    auto run = [](bool enabled) {
        SystemConfig cfg;
        cfg.overlaysEnabled = enabled;
        System sys(cfg);
        Asid parent = sys.createProcess();
        sys.mapAnon(parent, kBase, 8 * kPageSize);
        Rng rng(55);
        Tick t = 0;
        sys.fork(parent, ForkMode::OverlayOnWrite, 0, &t);
        std::vector<std::uint8_t> final_state(8 * kPageSize);
        for (unsigned i = 0; i < 3000; ++i) {
            Addr addr = kBase + rng.below(8 * kPageSize - 8);
            std::uint64_t value = rng.next();
            sys.write(parent, addr, &value, 8, t);
        }
        sys.peek(parent, kBase, final_state.data(), kPageSize);
        for (unsigned p = 0; p < 8; ++p) {
            sys.peek(parent, kBase + p * kPageSize,
                     final_state.data() + p * kPageSize, kPageSize);
        }
        return final_state;
    };
    EXPECT_EQ(run(true), run(false));
}

// ------------------------- consistency fuzz ----------------------------

/**
 * Property: the System's functional semantics (poke/peek/write/read,
 * overlaying writes, CoW, promotion) always match a flat host-side
 * shadow of the process's address space.
 */
class SemanticsFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SemanticsFuzz, MatchesShadowModel)
{
    Rng rng(GetParam());
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    constexpr unsigned kPages = 8;
    // Half the range private, half zero-backed overlay pages.
    sys.mapAnon(asid, kBase, kPages / 2 * kPageSize);
    sys.mapZeroOverlay(asid, kBase + kPages / 2 * kPageSize,
                       kPages / 2 * kPageSize);

    std::vector<std::uint8_t> shadow(kPages * kPageSize, 0);
    Tick t = 0;
    for (unsigned step = 0; step < 4000; ++step) {
        Addr offset = rng.below(kPages * kPageSize - 8);
        Addr addr = kBase + offset;
        switch (rng.below(6)) {
          case 0: { // timed write
            std::uint64_t value = rng.next();
            t = sys.write(asid, addr, &value, 8, t);
            std::memcpy(shadow.data() + offset, &value, 8);
            break;
          }
          case 1: { // functional poke
            std::uint32_t value = std::uint32_t(rng.next());
            sys.poke(asid, addr, &value, 4);
            std::memcpy(shadow.data() + offset, &value, 4);
            break;
          }
          case 2: { // timed read
            std::uint64_t got = 0, want = 0;
            t = sys.read(asid, addr, &got, 8, t);
            std::memcpy(&want, shadow.data() + offset, 8);
            ASSERT_EQ(got, want) << "step " << step;
            break;
          }
          case 3: { // functional peek
            std::uint8_t got = 0;
            sys.peek(asid, addr, &got, 1);
            ASSERT_EQ(got, shadow[offset]) << "step " << step;
            break;
          }
          case 4: { // occasionally promote an overlay page
            if (rng.chance(0.05)) {
                Addr page = kBase + rng.below(kPages) * kPageSize;
                if (sys.pageObv(asid, page).any()) {
                    t = sys.promoteOverlay(
                        asid, page, PromoteAction::CopyAndCommit, t);
                }
            }
            break;
          }
          case 5: { // occasionally try zero-line reclamation
            if (rng.chance(0.1)) {
                std::uint64_t zero = 0;
                Addr line_addr = kBase + (offset & ~kLineMask);
                for (unsigned i = 0; i < kLineSize; i += 8) {
                    sys.poke(asid, line_addr + i, &zero, 8);
                    std::memset(shadow.data() +
                                    (line_addr - kBase) + i,
                                0, 8);
                }
                sys.reclaimZeroLine(asid, line_addr, t);
            }
            break;
          }
        }
    }
    // Final full comparison.
    std::vector<std::uint8_t> got(kPages * kPageSize);
    for (unsigned p = 0; p < kPages; ++p) {
        sys.peek(asid, kBase + p * kPageSize, got.data() + p * kPageSize,
                 kPageSize);
    }
    EXPECT_EQ(got, shadow);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemanticsFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace ovl
