/**
 * @file
 * Figure-level golden-determinism guard for the overlay metadata engine:
 * miniature fig09 (fork CPI), fig10 (SpMV overlay-vs-CSR) and table1
 * (technique-slice) runs with fixed seeds, pinned to the exact values of
 * the pre-dense-OMT tree. Any host-side refactor of the OMT/OMS path
 * (dense table, flattened page store, fused retag) must reproduce these
 * bit for bit; a mismatch means simulated behavior moved, and the change
 * must be fixed rather than the constants re-pinned.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "cpu/ooo_core.hh"
#include "sparse/csr.hh"
#include "sparse/overlay_matrix.hh"
#include "sparse/spmv.hh"
#include "system/system.hh"
#include "workload/forkbench.hh"
#include "workload/matrixgen.hh"

namespace ovl
{
namespace
{

/**
 * The table1-style slice: a suite benchmark scaled down by 8 with short
 * epochs — the same recipe bench/table1_techniques.cc uses, and a dense
 * exercise of fork, overlaying writes, CoW, promotion and teardown.
 */
ForkBenchResult
forkSlice(const char *name, ForkMode mode)
{
    ForkBenchParams params = forkBenchByName(name);
    params.warmupInstructions = 60'000;
    params.postForkInstructions = 300'000;
    params.footprintPages /= 8;
    params.hotPages /= 8;
    params.dirtyPages /= 8;
    return runForkBench(params, mode, SystemConfig{});
}

} // namespace

TEST(GoldenFigures, Fig09ForkSlicesAreBitForBitStable)
{
    // One benchmark per write-working-set type, both fork modes.
    ForkBenchResult r = forkSlice("libq", ForkMode::CopyOnWrite);
    EXPECT_EQ(r.cpi, 1.3710199999999999);
    EXPECT_EQ(r.additionalMemoryMB, 0.0078125);
    EXPECT_EQ(r.cowFaults, 2u);
    EXPECT_EQ(r.forkLatency, 6610u);

    r = forkSlice("libq", ForkMode::OverlayOnWrite);
    EXPECT_EQ(r.cpi, 1.3371233333333334);
    EXPECT_EQ(r.additionalMemoryMB, 0.0166015625);
    EXPECT_EQ(r.overlayingWrites, 8u);

    r = forkSlice("cactus", ForkMode::CopyOnWrite);
    EXPECT_EQ(r.cpi, 2.74207);
    EXPECT_EQ(r.additionalMemoryMB, 0.20703125);
    EXPECT_EQ(r.cowFaults, 53u);
    EXPECT_EQ(r.forkLatency, 8170u);

    r = forkSlice("cactus", ForkMode::OverlayOnWrite);
    EXPECT_EQ(r.cpi, 3.3312566666666665);
    EXPECT_EQ(r.additionalMemoryMB, 0.220703125);
    EXPECT_EQ(r.overlayingWrites, 3351u);
}

TEST(GoldenFigures, Table1TechniqueSliceIsBitForBitStable)
{
    // Technique 1's exact shape (mcf slice, both modes): the headline
    // overlay-on-write win must reproduce to the last digit.
    ForkBenchResult cow = forkSlice("mcf", ForkMode::CopyOnWrite);
    EXPECT_EQ(cow.cpi, 4.9588833333333335);
    EXPECT_EQ(cow.additionalMemoryMB, 0.48828125);
    EXPECT_EQ(cow.cowFaults, 125u);
    EXPECT_EQ(cow.forkLatency, 17890u);

    ForkBenchResult oow = forkSlice("mcf", ForkMode::OverlayOnWrite);
    EXPECT_EQ(oow.cpi, 1.8004766666666667);
    EXPECT_EQ(oow.additionalMemoryMB, 0.08056640625);
    EXPECT_EQ(oow.overlayingWrites, 500u);
    EXPECT_EQ(oow.forkLatency, 17890u);
}

TEST(GoldenFigures, Fig10SpmvPairIsBitForBitStable)
{
    MatrixSpec spec;
    spec.targetL = 4.0;
    spec.nnz = 20'000;
    CooMatrix coo = generateMatrix(spec);
    std::vector<double> x(coo.cols);
    Rng rng(3);
    for (double &v : x)
        v = rng.uniform();
    SpmvAddrs addrs;

    System ovl_sys((SystemConfig()));
    OooCore ovl_core("core", ovl_sys);
    Asid ovl_asid = ovl_sys.createProcess();
    installVectors(ovl_sys, ovl_asid, addrs, x, coo.rows);
    OverlayMatrix matrix(ovl_sys, ovl_asid, addrs.aBase);
    matrix.build(coo);
    SpmvResult overlay = spmvOverlay(ovl_sys, ovl_core, matrix, addrs, x, 0);
    EXPECT_EQ(overlay.cycles, 188925u);
    EXPECT_EQ(overlay.instructions, 96144u);
    EXPECT_EQ(matrix.storedBytes(), 634368u);

    System csr_sys((SystemConfig()));
    OooCore csr_core("core", csr_sys);
    Asid csr_asid = csr_sys.createProcess();
    installVectors(csr_sys, csr_asid, addrs, x, coo.rows);
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    installCsr(csr_sys, csr_asid, addrs, csr);
    csr_sys.quiesce();
    SpmvResult csr_res = spmvCsr(csr_sys, csr_core, csr_asid, addrs, csr, x,
                                 0);
    EXPECT_EQ(csr_res.cycles, 264990u);
    EXPECT_EQ(csr_res.instructions, 125120u);
    EXPECT_EQ(csr.bytes(), 244100u);
}

} // namespace ovl
