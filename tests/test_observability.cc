/**
 * @file
 * Tests for the observability layer: tick-domain stats sampling
 * (src/sim/stats_sampler.hh) and Chrome trace-event output
 * (src/sim/trace.hh). The contracts under test:
 *
 *  - interval-N sampling emits exactly floor(end_tick/N)+1 records at
 *    monotone boundary ticks 0, N, 2N, ...;
 *  - every emitted line is well-formed JSON (validated with a small
 *    recursive-descent checker, same grammar json.tool accepts);
 *  - a traced fork workload produces a parseable trace whose B/E spans
 *    balance per thread track;
 *  - instrumentation never moves simulated time.
 */

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/stats_sampler.hh"
#include "sim/trace.hh"
#include "system/system.hh"
#include "workload/forkbench.hh"

using namespace ovl;

namespace
{

/**
 * Minimal JSON well-formedness checker (objects, arrays, strings,
 * numbers, true/false/null). Returns true iff @p text is exactly one
 * valid JSON value plus trailing whitespace.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\')
                ++pos_; // skip the escaped character
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        std::size_t len = std::char_traits<char>::length(word);
        if (s_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

bool
isValidJson(const std::string &text)
{
    return JsonChecker(text).valid();
}

/** Split a JSONL stream into its non-empty lines. */
std::vector<std::string>
jsonlLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (!line.empty())
            lines.push_back(line);
    }
    return lines;
}

/** Extract the integer value following `"key":` in a JSON record
 *  (tolerates the sampler's `": "` and the trace writer's `":"`). */
long long
extractInt(const std::string &line, const std::string &key)
{
    std::string needle = "\"" + key + "\":";
    std::size_t pos = line.find(needle);
    EXPECT_NE(pos, std::string::npos) << key << " not in: " << line;
    if (pos == std::string::npos)
        return -1;
    pos += needle.size();
    while (pos < line.size() && line[pos] == ' ')
        ++pos;
    return std::strtoll(line.c_str() + pos, nullptr, 10);
}

} // namespace

TEST(StatsSampler, RecordCountIsFloorEndOverNPlusOne)
{
    stats::Group group("g");
    stats::Counter counter(&group, "count", "");

    constexpr Tick kInterval = 100;
    constexpr Tick kEnd = 1034; // not a boundary on purpose
    std::ostringstream os;
    StatsSampler sampler(os, kInterval, StatsSampler::Mode::Cumulative);
    sampler.addGroup("g", &group);
    sampler.begin(0);
    // Irregular observation points; the record grid must stay N-aligned.
    counter += 3;
    sampler.observe(7);
    counter += 10;
    sampler.observe(512);
    sampler.finish(kEnd);

    std::vector<std::string> lines = jsonlLines(os.str());
    ASSERT_EQ(lines.size(), std::size_t(kEnd / kInterval + 1));
    EXPECT_EQ(sampler.records(), lines.size());
    Tick expected = 0;
    for (const std::string &line : lines) {
        EXPECT_TRUE(isValidJson(line)) << line;
        EXPECT_EQ(extractInt(line, "tick"), (long long)expected);
        expected += kInterval;
    }
}

TEST(StatsSampler, DeltaModeReportsPerIntervalActivity)
{
    stats::Group group("g");
    stats::Counter counter(&group, "count", "");

    std::ostringstream os;
    StatsSampler sampler(os, 10, StatsSampler::Mode::Delta, "run-a");
    sampler.addGroup("g", &group);
    sampler.begin(0);
    counter += 5;
    sampler.observe(10); // boundary 10 sees +5
    counter += 2;
    sampler.finish(30); // boundary 20 sees +2, boundary 30 sees +0

    std::vector<std::string> lines = jsonlLines(os.str());
    ASSERT_EQ(lines.size(), 4u);
    const long long expected[] = {0, 5, 2, 0};
    for (std::size_t i = 0; i < lines.size(); ++i) {
        EXPECT_TRUE(isValidJson(lines[i])) << lines[i];
        EXPECT_EQ(extractInt(lines[i], "g.count"), expected[i]) << i;
        EXPECT_NE(lines[i].find("\"run\": \"run-a\""), std::string::npos);
    }
}

TEST(StatsSampler, RebaseAfterResetKeepsDeltasNonNegative)
{
    stats::Group group("g");
    stats::Counter counter(&group, "count", "");

    std::ostringstream os;
    StatsSampler sampler(os, 10, StatsSampler::Mode::Delta);
    sampler.addGroup("g", &group);
    sampler.begin(0);
    counter += 8;
    sampler.observe(10);
    // External reset (what System::resetStats does post-fork) followed
    // by rebase: the next interval must not report 3 - 8 = -5.
    group.resetStats();
    sampler.rebase();
    counter += 3;
    sampler.finish(20);

    std::vector<std::string> lines = jsonlLines(os.str());
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(extractInt(lines[1], "g.count"), 8);
    EXPECT_EQ(extractInt(lines[2], "g.count"), 3);
}

TEST(StatsSampler, HistogramSamplesAsCountAndSum)
{
    stats::Group group("g");
    stats::Histogram hist(&group, "lat", "", 10, 4);
    hist.sample(15);
    hist.sample(7);

    std::ostringstream os;
    StatsSampler sampler(os, 5, StatsSampler::Mode::Cumulative);
    sampler.addGroup("g", &group);
    sampler.begin(0);
    sampler.finish(0);

    std::vector<std::string> lines = jsonlLines(os.str());
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(extractInt(lines[0], "g.lat.samples"), 2);
    EXPECT_EQ(extractInt(lines[0], "g.lat.sum"), 22);
}

TEST(StatsSampler, ScheduledOnEventQueueFiresEachBoundary)
{
    stats::Group group("g");
    stats::Counter counter(&group, "count", "");

    std::ostringstream os;
    StatsSampler sampler(os, 50, StatsSampler::Mode::Cumulative);
    sampler.addGroup("g", &group);
    sampler.begin(0);
    EventQueue eq;
    sampler.scheduleOn(eq);
    // runUntil (not drain: the sample event re-arms itself forever).
    eq.runUntil(275);
    EXPECT_EQ(sampler.records(), 1u + 275 / 50);
    EXPECT_EQ(sampler.nextDue(), Tick(300));
}

TEST(StatsSampler, SystemPumpSamplesWithoutMovingSimulatedTime)
{
    constexpr Addr kBase = 0x100000;
    constexpr unsigned kPages = 16;
    auto run = [&](StatsSampler *sampler) {
        System sys;
        Asid p = sys.createProcess();
        sys.mapAnon(p, kBase, kPages * kPageSize);
        if (sampler != nullptr)
            sys.attachStatsSampler(sampler, 0);
        Tick t = 0;
        for (unsigned i = 0; i < 2000; ++i) {
            Addr va = kBase + (i % (kPages * kLinesPerPage)) * kLineSize;
            t = sys.access(p, va, i % 3 == 0, t);
        }
        if (sampler != nullptr) {
            sampler->finish(t);
            sys.detachStatsSampler();
        }
        return t;
    };

    Tick plain = run(nullptr);

    std::ostringstream os;
    StatsSampler sampler(os, 1000, StatsSampler::Mode::Delta);
    Tick sampled = run(&sampler);

    // The sampler observed the run (records beyond the begin record)
    // and the simulated clock is bit-identical to the plain run.
    EXPECT_EQ(sampled, plain);
    EXPECT_EQ(sampler.records(), plain / 1000 + 1);
    for (const std::string &line : jsonlLines(os.str()))
        EXPECT_TRUE(isValidJson(line)) << line;
}

TEST(StatsJson, FullSystemDumpParsesIncludingEmptyHistograms)
{
    // A freshly built system has all-zero histograms; the dump must
    // still be one well-formed JSON document (empty bucket maps).
    System sys;
    std::ostringstream os;
    sys.dumpAllStatsJson(os);
    EXPECT_TRUE(isValidJson(os.str()));

    // And after some activity it still parses.
    Asid p = sys.createProcess();
    sys.mapAnon(p, 0x100000, 4 * kPageSize);
    Tick t = 0;
    for (unsigned i = 0; i < 64; ++i)
        t = sys.access(p, 0x100000 + i * kLineSize, i % 2 == 0, t);
    std::ostringstream os2;
    sys.dumpAllStatsJson(os2);
    EXPECT_TRUE(isValidJson(os2.str()));
}

namespace
{

/** Read a whole file into a string. */
std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

} // namespace

TEST(Trace, ForkWorkloadTraceParsesWithBalancedSpans)
{
    std::string path = testing::TempDir() + "/ovl_fork_trace.json";

    ForkBenchParams params = forkBenchByName("mcf");
    params.warmupInstructions = 10'000;
    params.postForkInstructions = 50'000;
    params.footprintPages /= 16;
    params.hotPages /= 16;
    params.dirtyPages /= 16;

    trace::start(path);
    runForkBench(params, ForkMode::OverlayOnWrite, SystemConfig{});
    std::uint64_t events = trace::eventCount();
    trace::stop();
    EXPECT_GT(events, 0u);

    std::string text = slurp(path);
    ASSERT_TRUE(isValidJson(text));

    // Walk the event lines: every B must be closed by an E on the same
    // tid (the writer emits one event per line).
    std::map<unsigned, long> open_spans;
    bool saw_complete = false, saw_instant = false, saw_span = false;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] != '{' || line == "{")
            continue;
        if (line.find("\"traceEvents\"") != std::string::npos)
            continue;
        long long tid = extractInt(line, "tid");
        if (line.find("\"ph\":\"B\"") != std::string::npos) {
            ++open_spans[unsigned(tid)];
            saw_span = true;
        } else if (line.find("\"ph\":\"E\"") != std::string::npos) {
            ASSERT_GT(open_spans[unsigned(tid)], 0)
                << "E without B: " << line;
            --open_spans[unsigned(tid)];
        } else if (line.find("\"ph\":\"X\"") != std::string::npos) {
            saw_complete = true;
            EXPECT_NE(line.find("\"dur\":"), std::string::npos) << line;
        } else if (line.find("\"ph\":\"i\"") != std::string::npos) {
            saw_instant = true;
        }
    }
    for (const auto &[tid, open] : open_spans)
        EXPECT_EQ(open, 0) << "unbalanced spans on tid " << tid;
    EXPECT_TRUE(saw_span);     // fork / CoW / overlaying-write spans
    EXPECT_TRUE(saw_complete); // DRAM / cache-miss / ORE spans
    (void)saw_instant;         // shootdowns are mode-dependent

    std::remove(path.c_str());
}

TEST(Trace, EventCapTruncatesAndRecordsTheDrop)
{
    std::string path = testing::TempDir() + "/ovl_capped_trace.json";
    trace::start(path, 5);
    for (unsigned i = 0; i < 12; ++i)
        trace::instant("test", "tick", i * 10);
    EXPECT_EQ(trace::eventCount(), 5u);
    EXPECT_EQ(trace::droppedCount(), 7u);
    trace::stop();

    std::string text = slurp(path);
    EXPECT_TRUE(isValidJson(text));
    EXPECT_NE(text.find("trace_truncated"), std::string::npos);
    EXPECT_NE(text.find("\"dropped_events\":7"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Trace, RowFilePathSuffixesTheRowBeforeTheExtension)
{
    EXPECT_EQ(trace::rowFilePath("sweep.json", 3), "sweep.row3.json");
    EXPECT_EQ(trace::rowFilePath("out/f8.trace.json", 0),
              "out/f8.trace.row0.json");
    // A dot inside a directory name is not an extension.
    EXPECT_EQ(trace::rowFilePath("runs.v2/sweep", 12),
              "runs.v2/sweep.row12");
    EXPECT_EQ(trace::rowFilePath("plain", 7), "plain.row7");
}

TEST(Trace, DisabledSinkIgnoresEvents)
{
    EXPECT_FALSE(trace::active());
    // Emission without a sink is a no-op, not a crash.
    trace::instant("test", "noop", 0);
    trace::begin("test", "noop", 0);
    trace::end("test", "noop", 1);
    trace::complete("test", "noop", 0, 1);
}

TEST(Trace, InstrumentationDoesNotMoveSimulatedTime)
{
    ForkBenchParams params = forkBenchByName("libq");
    params.warmupInstructions = 5'000;
    params.postForkInstructions = 20'000;
    params.footprintPages /= 16;
    params.hotPages /= 16;
    params.dirtyPages /= 16;

    ForkBenchResult plain =
        runForkBench(params, ForkMode::CopyOnWrite, SystemConfig{});

    std::string trace_path = testing::TempDir() + "/ovl_ab_trace.json";
    std::ostringstream samples;
    StatsSampler sampler(samples, 10'000, StatsSampler::Mode::Delta,
                         "libq/cow");
    trace::start(trace_path);
    ForkBenchResult traced =
        runForkBench(params, ForkMode::CopyOnWrite, SystemConfig{},
                     nullptr, nullptr, &sampler);
    trace::stop();
    std::remove(trace_path.c_str());

    EXPECT_EQ(traced.forkLatency, plain.forkLatency);
    EXPECT_DOUBLE_EQ(traced.cpi, plain.cpi);
    EXPECT_EQ(traced.cowFaults, plain.cowFaults);
    EXPECT_DOUBLE_EQ(traced.additionalMemoryMB, plain.additionalMemoryMB);
    EXPECT_GT(sampler.records(), 1u);
}
