/**
 * @file
 * Tests for resource teardown (unmap/destroyProcess with overlay
 * reclamation) and the JSON statistics export.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "system/system.hh"

namespace ovl
{
namespace
{

constexpr Addr kBase = 0x100000;

TEST(SystemUnmap, ReleasesFramesAndOverlays)
{
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    sys.mapAnon(asid, kBase, 2 * kPageSize);
    sys.mapZeroOverlay(asid, kBase + 2 * kPageSize, 2 * kPageSize);

    double v = 3.0;
    sys.poke(asid, kBase + 2 * kPageSize, &v, 8);
    Tick t = sys.access(asid, kBase + 2 * kPageSize + 64, true, 0);
    sys.caches().flushAll(t);
    ASSERT_GT(sys.overlayManager().omsBytesInUse(), 0u);
    std::uint64_t frames = sys.physMem().framesInUse();

    sys.unmap(asid, kBase, 4 * kPageSize, t);
    EXPECT_EQ(sys.overlayManager().omsBytesInUse(), 0u);
    EXPECT_EQ(sys.physMem().framesInUse(), frames - 2); // 2 anon frames
    EXPECT_EQ(sys.vmm().resolve(asid, pageNumber(kBase)), nullptr);
}

TEST(SystemUnmap, StaleOverlayWritebacksAreSquashed)
{
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    sys.mapZeroOverlay(asid, kBase, kPageSize);
    Tick t = sys.access(asid, kBase, true, 0); // dirty overlay line cached
    sys.unmap(asid, kBase, kPageSize, t);
    // Nothing lingers: flushing must not re-create OMS state.
    sys.caches().flushAll(t);
    EXPECT_EQ(sys.overlayManager().omsBytesInUse(), 0u);
    EXPECT_FALSE(sys.overlayManager().hasOverlay(
        overlay_addr::pageFromVirtual(asid, pageNumber(kBase))));
}

TEST(SystemUnmap, FreedFrameLinesDoNotAliasNextUser)
{
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    sys.mapAnon(asid, kBase, kPageSize);
    Addr old_ppn = sys.vmm().resolve(asid, pageNumber(kBase))->ppn;
    Tick t = sys.access(asid, kBase, true, 0); // dirty line in cache
    sys.unmap(asid, kBase, kPageSize, t);

    // Remap (the allocator recycles the frame LIFO).
    sys.mapAnon(asid, kBase, kPageSize);
    EXPECT_EQ(sys.vmm().resolve(asid, pageNumber(kBase))->ppn, old_ppn);
    // The first access to the recycled frame misses (no stale hit).
    AccessOutcome out;
    sys.access(asid, kBase, false, t + 10'000, &out);
    EXPECT_EQ(out.level, HitLevel::Memory);
}

TEST(SystemDestroy, TearsDownWholeAddressSpace)
{
    System sys((SystemConfig()));
    Asid keep = sys.createProcess();
    Asid die = sys.createProcess();
    sys.mapAnon(keep, kBase, kPageSize);
    sys.mapAnon(die, kBase, 4 * kPageSize);
    sys.mapZeroOverlay(die, kBase + 4 * kPageSize, 2 * kPageSize);
    double v = 1.0;
    sys.poke(die, kBase + 4 * kPageSize, &v, 8);
    std::uint64_t magic = 0x600D;
    sys.poke(keep, kBase, &magic, 8);

    std::uint64_t before = sys.physMem().framesInUse();
    sys.destroyProcess(die, 0);
    EXPECT_EQ(sys.physMem().framesInUse(), before - 4);
    EXPECT_EQ(sys.vmm().process(die).pageTable.size(), 0u);
    // The survivor is untouched.
    std::uint64_t got = 0;
    sys.peek(keep, kBase, &got, 8);
    EXPECT_EQ(got, 0x600Du);
}

TEST(StatsJson, WellFormedAndComplete)
{
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    sys.mapAnon(asid, kBase, kPageSize);
    sys.access(asid, kBase, true, 0);

    std::ostringstream os;
    sys.dumpAllStatsJson(os);
    std::string json = os.str();

    // Structure: balanced braces, quoted keys, expected groups present.
    long depth = 0;
    for (char c : json) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_NE(json.find("\"system\""), std::string::npos);
    EXPECT_NE(json.find("\"system.caches.l1\""), std::string::npos);
    EXPECT_NE(json.find("\"system.overlay.omtCache\""), std::string::npos);
    EXPECT_NE(json.find("\"accesses\": 1"), std::string::npos);
    // Histograms export as objects.
    EXPECT_NE(json.find("\"readLatency\": {"), std::string::npos);
}

TEST(StatsJson, GroupJsonIsValidForEmptyAndPopulatedHistograms)
{
    stats::Group group("g");
    stats::Counter c(&group, "count", "");
    stats::Histogram h(&group, "hist", "", 10, 4);
    std::ostringstream empty;
    group.dumpJson(empty);
    // A zero-sample histogram still carries its (empty) bucket map, so
    // every histogram value has the same shape and parses as JSON.
    EXPECT_EQ(empty.str(),
              "{\"count\": 0, \"hist\": {\"samples\": 0, "
              "\"buckets\": {}}}");

    c += 2;
    h.sample(15);
    std::ostringstream full;
    group.dumpJson(full);
    EXPECT_EQ(full.str(),
              "{\"count\": 2, \"hist\": {\"samples\": 1, \"mean\": 15, "
              "\"min\": 15, \"max\": 15, \"buckets\": {\"10\": 1}}}");
}

} // namespace
} // namespace ovl
