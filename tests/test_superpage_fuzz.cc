/**
 * @file
 * Randomized battery for the flexible super-page manager (§5.3.5):
 * segment-granular CoW against per-segment host shadows, protection-
 * domain enforcement, and the capacity accounting versus rigid 2 MB CoW.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "tech/superpage.hh"

namespace ovl
{
namespace
{

constexpr Addr kSp = 0x4000'0000;

class SuperPageFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SuperPageFuzz, SegmentCowTracksExactlyTheWrittenSegments)
{
    Rng rng(GetParam());
    System sys((SystemConfig()));
    Asid owner = sys.createProcess();
    Asid clone = sys.createProcess();
    tech::SuperPageManager spm(sys);
    spm.mapSuperPage(owner, kSp);
    spm.share(owner, clone, kSp);

    std::vector<bool> written(64, false);
    Tick t = 0;
    tech::SuperPageCowStats stats;
    for (unsigned step = 0; step < 300; ++step) {
        unsigned seg = unsigned(rng.below(64));
        Addr addr = kSp + Addr(seg) * tech::kSegmentSize +
                    rng.below(tech::kSegmentSize & ~7ull);
        t = spm.write(clone, addr, t, &stats);
        written[seg] = true;

        BitVector64 remapped = spm.segmentVector(clone, kSp);
        unsigned expected = 0;
        for (unsigned s = 0; s < 64; ++s) {
            ASSERT_EQ(remapped.test(s), written[s])
                << "segment " << s << " step " << step;
            expected += written[s];
        }
        ASSERT_EQ(stats.segmentCopies, expected);
        ASSERT_EQ(spm.flexibleBytes(),
                  std::uint64_t(expected) * tech::kSegmentSize);
    }
    // Rigid CoW would have copied the whole 2 MB on the first write.
    EXPECT_EQ(spm.rigidBytes(), tech::kSuperPageSize);
    EXPECT_LE(spm.flexibleBytes(), tech::kSuperPageSize);
}

TEST_P(SuperPageFuzz, ProtectionDomainsAreIndependent)
{
    Rng rng(GetParam() + 9);
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    tech::SuperPageManager spm(sys);
    spm.mapSuperPage(asid, kSp);

    std::vector<bool> writable(64, true);
    for (unsigned step = 0; step < 200; ++step) {
        unsigned seg = unsigned(rng.below(64));
        bool w = rng.chance(0.5);
        spm.protectSegment(asid, kSp + Addr(seg) * tech::kSegmentSize, w);
        writable[seg] = w;
        for (unsigned s = 0; s < 64; ++s) {
            ASSERT_EQ(spm.isWritable(asid,
                                     kSp + Addr(s) * tech::kSegmentSize +
                                         64),
                      writable[s])
                << "segment " << s;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuperPageFuzz,
                         ::testing::Values(21, 42, 84));

TEST(SuperPage, MultipleSharersGetIndependentSegmentMaps)
{
    System sys((SystemConfig()));
    Asid owner = sys.createProcess();
    Asid a = sys.createProcess();
    Asid b = sys.createProcess();
    tech::SuperPageManager spm(sys);
    spm.mapSuperPage(owner, kSp);
    spm.share(owner, a, kSp);
    spm.share(owner, b, kSp);

    spm.write(a, kSp + 3 * tech::kSegmentSize, 0);
    EXPECT_TRUE(spm.segmentVector(a, kSp).test(3));
    EXPECT_FALSE(spm.segmentVector(b, kSp).test(3));
    spm.write(b, kSp + 9 * tech::kSegmentSize, 0);
    EXPECT_FALSE(spm.segmentVector(a, kSp).test(9));
    EXPECT_TRUE(spm.segmentVector(b, kSp).test(9));
}

} // namespace
} // namespace ovl
