/**
 * @file
 * Unit and property tests for src/common: BitVector64, integer math,
 * address geometry, and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bitvector64.hh"
#include "common/intmath.hh"
#include "common/random.hh"
#include "common/types.hh"

namespace ovl
{
namespace
{

TEST(BitVector64, StartsEmpty)
{
    BitVector64 bv;
    EXPECT_TRUE(bv.none());
    EXPECT_FALSE(bv.any());
    EXPECT_EQ(bv.count(), 0u);
    EXPECT_EQ(bv.findFirst(), 64u);
}

TEST(BitVector64, SetTestClear)
{
    BitVector64 bv;
    bv.set(0);
    bv.set(63);
    bv.set(17);
    EXPECT_TRUE(bv.test(0));
    EXPECT_TRUE(bv.test(63));
    EXPECT_TRUE(bv.test(17));
    EXPECT_FALSE(bv.test(16));
    EXPECT_EQ(bv.count(), 3u);
    bv.clear(17);
    EXPECT_FALSE(bv.test(17));
    EXPECT_EQ(bv.count(), 2u);
}

TEST(BitVector64, AssignMatchesSetClear)
{
    BitVector64 a, b;
    a.assign(5, true);
    b.set(5);
    EXPECT_EQ(a, b);
    a.assign(5, false);
    b.clear(5);
    EXPECT_EQ(a, b);
}

TEST(BitVector64, FillAndAll)
{
    BitVector64 bv;
    bv.fill();
    EXPECT_TRUE(bv.all());
    EXPECT_EQ(bv.count(), 64u);
    bv.clear(33);
    EXPECT_FALSE(bv.all());
    EXPECT_EQ(bv.findFirstClear(), 33u);
}

TEST(BitVector64, FindFirstAndNextWalkSetBits)
{
    BitVector64 bv;
    bv.set(3);
    bv.set(9);
    bv.set(62);
    EXPECT_EQ(bv.findFirst(), 3u);
    EXPECT_EQ(bv.findNext(3), 9u);
    EXPECT_EQ(bv.findNext(9), 62u);
    EXPECT_EQ(bv.findNext(62), 64u);
}

TEST(BitVector64, FindNextFromBit63)
{
    BitVector64 bv;
    bv.set(63);
    EXPECT_EQ(bv.findNext(62), 63u);
    EXPECT_EQ(bv.findNext(63), 64u);
}

TEST(BitVector64, IterationVisitsExactlyTheSetBits)
{
    // Property: findFirst/findNext enumerate the same set that test()
    // reports, in ascending order, for arbitrary patterns.
    Rng rng(42);
    for (int trial = 0; trial < 200; ++trial) {
        BitVector64 bv(rng.next());
        std::set<unsigned> expected;
        for (unsigned i = 0; i < 64; ++i) {
            if (bv.test(i))
                expected.insert(i);
        }
        std::set<unsigned> visited;
        for (unsigned i = bv.findFirst(); i < 64; i = bv.findNext(i))
            visited.insert(i);
        EXPECT_EQ(visited, expected);
        EXPECT_EQ(bv.count(), unsigned(expected.size()));
    }
}

TEST(BitVector64, BitwiseOperators)
{
    BitVector64 a(0b1100), b(0b1010);
    EXPECT_EQ((a | b).raw(), 0b1110u);
    EXPECT_EQ((a & b).raw(), 0b1000u);
    EXPECT_EQ((~BitVector64(0)).count(), 64u);
}

TEST(IntMath, PowersOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(12));
}

TEST(IntMath, Logs)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(4097), 12u);
    EXPECT_EQ(ceilLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4097), 13u);
    EXPECT_EQ(ceilLog2(1), 0u);
}

TEST(IntMath, DivCeilAndRounding)
{
    EXPECT_EQ(divCeil(10, 4), 3u);
    EXPECT_EQ(divCeil(8, 4), 2u);
    EXPECT_EQ(roundUp(100, 64), 128u);
    EXPECT_EQ(roundUp(128, 64), 128u);
    EXPECT_EQ(roundDown(100, 64), 64u);
}

TEST(AddressGeometry, PageAndLineHelpers)
{
    Addr a = 0x12345678;
    EXPECT_EQ(pageNumber(a), a >> 12);
    EXPECT_EQ(pageBase(a) + pageOffset(a), a);
    EXPECT_EQ(lineBase(a) & kLineMask, 0u);
    EXPECT_LT(lineInPage(a), kLinesPerPage);
    EXPECT_EQ(lineInPage(0x1000), 0u);
    EXPECT_EQ(lineInPage(0x1FC0), 63u);
}

TEST(AddressGeometry, SixtyFourLinesPerPage)
{
    EXPECT_EQ(kLinesPerPage, 64u);
    EXPECT_EQ(kPageSize, 4096u);
    EXPECT_EQ(kLineSize, 64u);
}

TEST(Rng, Deterministic)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(7), b(8);
    bool diverged = false;
    for (int i = 0; i < 10 && !diverged; ++i)
        diverged = a.next() != b.next();
    EXPECT_TRUE(diverged);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(99);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(123);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

} // namespace
} // namespace ovl
