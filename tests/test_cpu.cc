/**
 * @file
 * Tests for the out-of-order core model: single issue, window-limited
 * memory-level parallelism, dependence serialization, and CPI
 * accounting (Table 2 core parameters).
 */

#include <gtest/gtest.h>

#include "cpu/ooo_core.hh"

namespace ovl
{
namespace
{

constexpr Addr kBase = 0x200000;

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest() : sys(SystemConfig{}), core("core", sys)
    {
        asid = sys.createProcess();
        sys.mapAnon(asid, kBase, 64 * kPageSize);
    }

    System sys;
    OooCore core;
    Asid asid = 0;
};

TEST_F(CoreTest, ComputeOnlyCpiIsOne)
{
    Trace trace;
    trace.push_back(TraceOp::compute(1000));
    core.run(asid, trace, 0);
    EXPECT_EQ(core.epochInstructions(), 1000u);
    EXPECT_EQ(core.epochCycles(), 1000u);
    EXPECT_DOUBLE_EQ(core.epochCpi(), 1.0);
}

TEST_F(CoreTest, IndependentMissesOverlap)
{
    // 8 independent loads to distinct pages: the window lets them
    // overlap, so total time is far less than 8 serial misses.
    Trace parallel_trace;
    for (unsigned i = 0; i < 8; ++i)
        parallel_trace.push_back(TraceOp::load(kBase + i * kPageSize));
    Tick parallel = core.run(asid, parallel_trace, 0);

    System sys2(SystemConfig{});
    OooCore core2("core2", sys2);
    Asid asid2 = sys2.createProcess();
    sys2.mapAnon(asid2, kBase, 64 * kPageSize);
    Trace serial_trace;
    for (unsigned i = 0; i < 8; ++i) {
        serial_trace.push_back(
            TraceOp::load(kBase + i * kPageSize, /*depends=*/true));
    }
    Tick serial = core2.run(asid2, serial_trace, 0);
    EXPECT_LT(parallel, serial / 2);
}

TEST_F(CoreTest, DependenceSerializes)
{
    Trace trace;
    trace.push_back(TraceOp::load(kBase));
    trace.push_back(TraceOp::load(kBase + kPageSize, /*depends=*/true));
    Tick done = core.run(asid, trace, 0);
    // The second load could not start before the first completed; both
    // are cold TLB + DRAM misses.
    EXPECT_GT(done, 2000u);
}

TEST_F(CoreTest, WindowLimitsOutstandingInstructions)
{
    // 200 independent cold loads: only 64 (the window) can be in flight.
    Trace trace;
    for (unsigned i = 0; i < 200; ++i)
        trace.push_back(TraceOp::load(kBase + (Addr(i) * 67 % 256) *
                                      kPageSize / 4));
    core.run(asid, trace, 0);
    EXPECT_EQ(core.epochInstructions(), 200u);
    SUCCEED();
}

TEST_F(CoreTest, EpochsAreIndependent)
{
    Trace trace;
    trace.push_back(TraceOp::compute(100));
    core.run(asid, trace, 0);
    Tick first = core.epochCycles();
    core.run(asid, trace, 50'000);
    EXPECT_EQ(core.epochCycles(), first);
}

TEST_F(CoreTest, StoresCountAsInstructions)
{
    Trace trace;
    trace.push_back(TraceOp::store(kBase));
    trace.push_back(TraceOp::load(kBase + 64));
    trace.push_back(TraceOp::compute(3));
    core.run(asid, trace, 0);
    EXPECT_EQ(core.epochInstructions(), 5u);
    EXPECT_EQ(core.totalInstructions(), 5u);
}

TEST_F(CoreTest, WarmAccessesApproachSingleCycleIssue)
{
    // After warmup, L1-hit loads at 2 cycles with a 64-entry window
    // sustain ~1 IPC (the window hides the 2-cycle latency).
    Trace warm;
    for (unsigned i = 0; i < 16; ++i)
        warm.push_back(TraceOp::load(kBase + i * kLineSize));
    Tick t = core.run(asid, warm, 0);

    Trace measured;
    for (unsigned rep = 0; rep < 100; ++rep)
        for (unsigned i = 0; i < 16; ++i)
            measured.push_back(TraceOp::load(kBase + i * kLineSize));
    core.run(asid, measured, t);
    EXPECT_LT(core.epochCpi(), 1.3);
}

} // namespace
} // namespace ovl
