/**
 * @file
 * Randomized multi-process VM battery: arbitrary interleavings of fork,
 * write (with CoW or overlay divergence), unmap and teardown across a
 * process tree, verified against per-process host shadows; plus frame
 * refcount conservation.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/random.hh"
#include "system/system.hh"

namespace ovl
{
namespace
{

constexpr Addr kBase = 0x100000;
constexpr unsigned kPages = 6;

class VmFuzz : public ::testing::TestWithParam<
                   std::tuple<std::uint64_t, ForkMode>>
{
};

TEST_P(VmFuzz, ProcessTreeContentsMatchShadows)
{
    auto [seed, mode] = GetParam();
    Rng rng(seed);
    System sys((SystemConfig()));

    struct Proc
    {
        Asid asid;
        bool alive = true;
        std::vector<std::uint8_t> shadow;
    };
    std::vector<Proc> procs;

    Proc root;
    root.asid = sys.createProcess();
    root.shadow.assign(kPages * kPageSize, 0);
    sys.mapAnon(root.asid, kBase, kPages * kPageSize);
    procs.push_back(std::move(root));

    Tick t = 0;
    for (unsigned step = 0; step < 2500; ++step) {
        // Pick a live process.
        std::vector<std::size_t> live;
        for (std::size_t i = 0; i < procs.size(); ++i) {
            if (procs[i].alive)
                live.push_back(i);
        }
        ASSERT_FALSE(live.empty());
        std::size_t pi = live[rng.below(live.size())];

        switch (rng.below(10)) {
          case 0: { // fork (bounded tree size)
            if (procs.size() >= 6)
                break;
            Asid child = sys.fork(procs[pi].asid, mode, t, &t);
            Proc c;
            c.asid = child;
            c.shadow = procs[pi].shadow; // inherits the parent's view
            procs.push_back(std::move(c));
            break;
          }
          case 1: { // teardown (keep at least one process)
            if (live.size() < 2)
                break;
            sys.destroyProcess(procs[pi].asid, t);
            procs[pi].alive = false;
            break;
          }
          default: { // write or read
            Addr offset = rng.below(kPages * kPageSize - 8);
            if (rng.chance(0.5)) {
                std::uint64_t value = rng.next();
                t = sys.write(procs[pi].asid, kBase + offset, &value, 8,
                              t);
                std::memcpy(procs[pi].shadow.data() + offset, &value, 8);
            } else {
                std::uint64_t got = 0, want = 0;
                sys.peek(procs[pi].asid, kBase + offset, &got, 8);
                std::memcpy(&want, procs[pi].shadow.data() + offset, 8);
                ASSERT_EQ(got, want)
                    << "proc " << pi << " step " << step;
            }
            break;
          }
        }
    }

    // Full sweep: every live process sees exactly its own history.
    for (const Proc &proc : procs) {
        if (!proc.alive)
            continue;
        std::vector<std::uint8_t> got(kPages * kPageSize);
        for (unsigned p = 0; p < kPages; ++p) {
            sys.peek(proc.asid, kBase + p * kPageSize,
                     got.data() + p * kPageSize, kPageSize);
        }
        EXPECT_EQ(got, proc.shadow) << "asid " << proc.asid;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModes, VmFuzz,
    ::testing::Combine(::testing::Values(3u, 14u, 159u),
                       ::testing::Values(ForkMode::CopyOnWrite,
                                         ForkMode::OverlayOnWrite)));

TEST(VmRefcount, ForkTreeConservesFrames)
{
    System sys((SystemConfig()));
    Asid a = sys.createProcess();
    sys.mapAnon(a, kBase, 4 * kPageSize);
    std::uint64_t base_frames = sys.physMem().framesInUse();

    Tick t = 0;
    Asid b = sys.fork(a, ForkMode::CopyOnWrite, 0, &t);
    Asid c = sys.fork(b, ForkMode::CopyOnWrite, t, &t);
    // Sharing: no new frames yet.
    EXPECT_EQ(sys.physMem().framesInUse(), base_frames);

    // Each divergence adds exactly one frame.
    t = sys.access(b, kBase, true, t);
    EXPECT_EQ(sys.physMem().framesInUse(), base_frames + 1);
    t = sys.access(c, kBase, true, t);
    EXPECT_EQ(sys.physMem().framesInUse(), base_frames + 2);

    // Tearing everything down returns to the baseline of process a.
    sys.destroyProcess(c, t);
    sys.destroyProcess(b, t);
    EXPECT_EQ(sys.physMem().framesInUse(), base_frames);
}

} // namespace
} // namespace ovl
