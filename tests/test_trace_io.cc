/**
 * @file
 * Tests for trace serialization: round-tripping, summaries, malformed
 * input rejection (via death tests on the fatal paths), and replay
 * determinism.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/random.hh"
#include "cpu/trace_io.hh"

namespace ovl
{
namespace
{

Trace
randomTrace(std::uint64_t seed, std::size_t records)
{
    Rng rng(seed);
    Trace trace;
    for (std::size_t i = 0; i < records; ++i) {
        switch (rng.below(3)) {
          case 0:
            trace.push_back(TraceOp::load(rng.below(1 << 24) * 8,
                                          rng.chance(0.2)));
            break;
          case 1:
            trace.push_back(TraceOp::store(rng.below(1 << 24) * 8));
            break;
          default:
            trace.push_back(
                TraceOp::compute(std::uint32_t(1 + rng.below(40))));
            break;
        }
    }
    return trace;
}

TEST(TraceIo, RoundTripPreservesEveryField)
{
    Trace original = randomTrace(7, 500);
    std::stringstream ss;
    std::uint64_t bytes = writeTrace(ss, original);
    EXPECT_EQ(bytes, 16u + 500u * 16u);

    Trace loaded = readTrace(ss);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i].kind, original[i].kind);
        EXPECT_EQ(loaded[i].dependsOnPrev, original[i].dependsOnPrev);
        EXPECT_EQ(loaded[i].count, original[i].count);
        EXPECT_EQ(loaded[i].vaddr, original[i].vaddr);
    }
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    std::stringstream ss;
    writeTrace(ss, Trace{});
    EXPECT_TRUE(readTrace(ss).empty());
}

TEST(TraceIo, FileRoundTrip)
{
    Trace original = randomTrace(9, 100);
    std::string path = ::testing::TempDir() + "/ovl_trace_test.bin";
    saveTraceFile(path, original);
    Trace loaded = loadTraceFile(path);
    EXPECT_EQ(loaded.size(), original.size());
    std::remove(path.c_str());
}

TEST(TraceIoDeathTest, BadMagicIsFatal)
{
    std::stringstream ss;
    ss << "NOPE-this-is-not-a-trace";
    EXPECT_EXIT(readTrace(ss), ::testing::ExitedWithCode(1), "bad magic");
}

TEST(TraceIoDeathTest, TruncationIsFatal)
{
    Trace original = randomTrace(3, 10);
    std::stringstream ss;
    writeTrace(ss, original);
    std::string bytes = ss.str();
    std::stringstream truncated(bytes.substr(0, bytes.size() - 8));
    EXPECT_EXIT(readTrace(truncated), ::testing::ExitedWithCode(1),
                "truncated");
}

TEST(TraceIo, SummaryCountsAreExact)
{
    Trace trace;
    trace.push_back(TraceOp::compute(10));
    trace.push_back(TraceOp::load(0x1000));
    trace.push_back(TraceOp::load(0x2000, true));
    trace.push_back(TraceOp::store(0x1040));
    TraceSummary summary = summarizeTrace(trace);
    EXPECT_EQ(summary.records, 4u);
    EXPECT_EQ(summary.instructions, 13u);
    EXPECT_EQ(summary.loads, 2u);
    EXPECT_EQ(summary.stores, 1u);
    EXPECT_EQ(summary.dependentOps, 1u);
    EXPECT_EQ(summary.minAddr, 0x1000u);
    EXPECT_EQ(summary.maxAddr, 0x2000u);
    EXPECT_EQ(summary.touchedPages, 2u);
}

TEST(TraceIo, ReplayOfLoadedTraceIsDeterministic)
{
    Trace trace = randomTrace(21, 300);
    // Keep addresses inside a mapped window.
    for (TraceOp &op : trace) {
        if (op.kind != TraceOp::Kind::Compute)
            op.vaddr = 0x100000 + (op.vaddr % (16 * kPageSize - 8));
    }
    std::stringstream ss;
    writeTrace(ss, trace);
    Trace loaded = readTrace(ss);

    auto run = [](const Trace &t) {
        System sys((SystemConfig()));
        OooCore core("core", sys);
        Asid asid = sys.createProcess();
        sys.mapAnon(asid, 0x100000, 16 * kPageSize);
        return core.run(asid, t, 0);
    };
    EXPECT_EQ(run(trace), run(loaded));
}

} // namespace
} // namespace ovl
