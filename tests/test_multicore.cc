/**
 * @file
 * Multi-core TLB coherence tests (§4.3.3): a process running on several
 * cores keeps all its TLBs' OBitVectors coherent through the
 * `overlaying read exclusive` message, with no shootdown; the
 * copy-on-write baseline must invalidate remote entries on every remap.
 */

#include <gtest/gtest.h>

#include "cpu/ooo_core.hh"
#include "system/system.hh"

namespace ovl
{
namespace
{

constexpr Addr kBase = 0x100000;

SystemConfig
dualCore()
{
    SystemConfig cfg;
    cfg.numTlbs = 2;
    return cfg;
}

TEST(MultiCore, CoresTranslateThroughTheirOwnTlbs)
{
    System sys(dualCore());
    Asid asid = sys.createProcess();
    sys.mapAnon(asid, kBase, kPageSize);

    AccessOutcome out;
    sys.access(asid, kBase, false, 0, &out, 0);
    EXPECT_TRUE(out.tlbWalk); // core 0 walks
    sys.access(asid, kBase, false, 10'000, &out, 1);
    EXPECT_TRUE(out.tlbWalk); // core 1 has its own TLB: walks too
    sys.access(asid, kBase, false, 20'000, &out, 1);
    EXPECT_FALSE(out.tlbWalk); // now cached on core 1
}

TEST(MultiCore, OreUpdatesRemoteTlbWithoutInvalidation)
{
    System sys(dualCore());
    Asid asid = sys.createProcess();
    sys.mapZeroOverlay(asid, kBase, kPageSize);

    // Both cores cache the translation (empty OBitVector).
    sys.access(asid, kBase, false, 0, nullptr, 0);
    sys.access(asid, kBase, false, 0, nullptr, 1);
    ASSERT_FALSE(sys.tlb(1).l1().probe(asid, pageNumber(kBase))
                     ->obv.test(0));

    // Core 0 performs the overlaying write.
    AccessOutcome out;
    sys.access(asid, kBase, true, 10'000, &out, 0);
    ASSERT_TRUE(out.overlayingWrite);

    // Core 1's cached entry was updated in place (no walk on reuse).
    EXPECT_TRUE(sys.tlb(1).l1().probe(asid, pageNumber(kBase))
                    ->obv.test(0));
    sys.access(asid, kBase, false, 20'000, &out, 1);
    EXPECT_FALSE(out.tlbWalk);
    EXPECT_TRUE(out.overlayLine); // and it routes to the overlay
}

TEST(MultiCore, CowRemapShootsDownRemoteTlb)
{
    SystemConfig cfg = dualCore();
    cfg.overlaysEnabled = false;
    System sys(cfg);
    Asid parent = sys.createProcess();
    sys.mapAnon(parent, kBase, kPageSize);
    Tick t = 0;
    sys.fork(parent, ForkMode::CopyOnWrite, 0, &t);

    // Both cores cache the shared translation.
    sys.access(parent, kBase, false, t, nullptr, 0);
    sys.access(parent, kBase, false, t, nullptr, 1);

    // Core 0 writes: CoW fault, remap, shootdown.
    AccessOutcome out;
    t = sys.access(parent, kBase, true, t + 10'000, &out, 0);
    ASSERT_TRUE(out.cowFault);

    // Core 1 lost its translation and must walk again.
    sys.access(parent, kBase, false, t, &out, 1);
    EXPECT_TRUE(out.tlbWalk);
}

TEST(MultiCore, ShootdownCostScalesWithTlbCount)
{
    auto divergence_cost = [](unsigned tlbs) {
        SystemConfig cfg;
        cfg.numTlbs = tlbs;
        cfg.overlaysEnabled = false;
        System sys(cfg);
        Asid parent = sys.createProcess();
        sys.mapAnon(parent, kBase, kPageSize);
        Tick t = 0;
        sys.fork(parent, ForkMode::CopyOnWrite, 0, &t);
        sys.access(parent, kBase, false, t, nullptr, 0);
        Tick start = t + 100'000;
        return sys.access(parent, kBase, true, start, nullptr, 0) - start;
    };
    Tick two = divergence_cost(2);
    Tick eight = divergence_cost(8);
    EXPECT_GT(eight, two); // per-TLB shootdown component (§4.3.3)
}

TEST(MultiCore, TwoCoresShareCachesCoherently)
{
    // A line written by core 0 is an L1 hit for core 1 (one shared
    // hierarchy in this machine model).
    System sys(dualCore());
    Asid asid = sys.createProcess();
    sys.mapAnon(asid, kBase, kPageSize);
    OooCore core0("core0", sys, 0);
    OooCore core1("core1", sys, 1);

    core0.beginEpoch(0);
    core0.executeOp(asid, TraceOp::store(kBase));
    Tick t = core0.finishEpoch();

    core1.beginEpoch(t);
    AccessOutcome out;
    sys.access(asid, kBase, false, t, &out, 1);
    EXPECT_EQ(out.level, HitLevel::L1);
}

} // namespace
} // namespace ovl
