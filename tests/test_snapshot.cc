/**
 * @file
 * The snapshot/clone subsystem (DESIGN.md §11): clone() identity,
 * serialized-byte determinism, warm-start execution equivalence,
 * checkpoint/restore golden twins over the whole fork suite, and a fuzz
 * pass proving malformed snapshot files fail with SnapshotError rather
 * than undefined behavior.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.hh"
#include "sim/snapshot.hh"
#include "system/system.hh"
#include "workload/forkbench.hh"

namespace ovl
{
namespace
{

constexpr Addr kBase = 0x100000;

std::string
statsText(System &sys)
{
    std::ostringstream os;
    sys.dumpAllStats(os);
    return os.str();
}

/** A machine mid-fork_cow: warmed, forked, CoW faults in flight. */
struct Scenario
{
    System sys;
    Asid parent;
    Tick t = 0;

    Scenario() : sys((SystemConfig())), parent(sys.createProcess())
    {
        sys.mapAnon(parent, kBase, 64 * kPageSize);
        for (unsigned p = 0; p < 64; ++p)
            t = sys.access(parent, kBase + p * kPageSize, true, t);
        Tick done = t;
        sys.fork(parent, ForkMode::CopyOnWrite, t, &done);
        t = done;
        // Dirty a few pages so CoW state, MRU caches and the DRAM
        // controller all hold non-trivial state at snapshot time.
        for (unsigned p = 0; p < 8; ++p)
            t = sys.access(parent, kBase + p * kPageSize + 64, true, t);
    }

    /** The post-snapshot op stream both twins must replay identically. */
    Tick
    drive(System &s, Tick when)
    {
        for (unsigned p = 0; p < 32; ++p) {
            when = s.access(parent, kBase + p * kPageSize + 128, true,
                            when);
            when = s.access(parent, kBase + ((p * 7) % 64) * kPageSize,
                            false, when);
        }
        s.caches().flushAll(when);
        return when;
    }
};

TEST(Clone, IsIndistinguishableFromTheOriginal)
{
    Scenario sc;
    std::unique_ptr<System> copy = sc.sys.clone();

    // Identical at the moment of the clone...
    EXPECT_EQ(statsText(sc.sys), statsText(*copy));

    // ...and identical after both replay the same op stream: every
    // access returns the same tick and every stat lands on the same
    // value, i.e. the clone is the original for simulation purposes.
    Tick end_orig = sc.drive(sc.sys, sc.t);
    Tick end_copy = sc.drive(*copy, sc.t);
    EXPECT_EQ(end_orig, end_copy);
    EXPECT_EQ(statsText(sc.sys), statsText(*copy));
}

TEST(Clone, DoesNotPerturbTheOriginal)
{
    Scenario twin_a;
    Scenario twin_b;
    std::unique_ptr<System> copy = twin_a.sys.clone();
    // Serialization observes without mutating: a machine that was
    // cloned behaves byte-identically to one that never was.
    Tick end_a = twin_a.drive(twin_a.sys, twin_a.t);
    Tick end_b = twin_b.drive(twin_b.sys, twin_b.t);
    EXPECT_EQ(end_a, end_b);
    EXPECT_EQ(statsText(twin_a.sys), statsText(twin_b.sys));
}

TEST(Clone, SerializedBytesAreDeterministic)
{
    Scenario sc;
    snapshot::Writer w1;
    sc.sys.serialize(w1);

    std::unique_ptr<System> copy = sc.sys.clone();
    snapshot::Writer w2;
    copy->serialize(w2);

    // serialize -> deserialize -> serialize is the identity on bytes.
    EXPECT_EQ(w1.buffer(), w2.buffer());
}

// ----- warm-start execution ---------------------------------------------

ForkBenchParams
smallParams(const char *name)
{
    ForkBenchParams p = forkBenchByName(name);
    p.warmupInstructions = 40'000;
    p.postForkInstructions = 100'000;
    return p;
}

void
expectSameResult(const ForkBenchResult &a, const ForkBenchResult &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.additionalMemoryMB, b.additionalMemoryMB);
    EXPECT_EQ(a.cpi, b.cpi);
    EXPECT_EQ(a.cowFaults, b.cowFaults);
    EXPECT_EQ(a.overlayingWrites, b.overlayingWrites);
    EXPECT_EQ(a.forkLatency, b.forkLatency);
}

TEST(WarmStart, MatchesColdRunsAcrossPatternsAndModes)
{
    // One benchmark per WritePattern (libq: Windowed, lbm: Streaming,
    // cactus: Clustered); both fork modes fan out from ONE warm state.
    for (const char *name : {"libq", "lbm", "cactus"}) {
        ForkBenchParams p = smallParams(name);
        ForkBenchWarmState warm =
            prepareForkBenchWarmState(p, SystemConfig{});
        for (ForkMode mode :
             {ForkMode::CopyOnWrite, ForkMode::OverlayOnWrite}) {
            SCOPED_TRACE(std::string(name) +
                         (mode == ForkMode::CopyOnWrite ? "/cow"
                                                        : "/oow"));
            ForkBenchResult cold =
                runForkBench(p, mode, SystemConfig{});
            ForkBenchResult from_warm =
                runForkBenchFromWarmState(warm, mode);
            expectSameResult(cold, from_warm);
        }
    }
}

TEST(WarmStart, PolicyConfigOverrideMatchesColdRun)
{
    // The promotion threshold is a policy field: a warm state captured
    // under the default config replays exactly under an override.
    ForkBenchParams p = smallParams("lbm");
    ForkBenchWarmState warm =
        prepareForkBenchWarmState(p, SystemConfig{});
    SystemConfig cfg;
    cfg.promoteThresholdLines = 16;
    ForkBenchResult cold =
        runForkBench(p, ForkMode::OverlayOnWrite, cfg);
    ForkBenchResult from_warm = runForkBenchFromWarmState(
        warm, ForkMode::OverlayOnWrite, &cfg);
    expectSameResult(cold, from_warm);
}

TEST(WarmStart, StructuralConfigOverrideThrows)
{
    ForkBenchParams p = smallParams("libq");
    ForkBenchWarmState warm =
        prepareForkBenchWarmState(p, SystemConfig{});
    SystemConfig cfg;
    cfg.memCapacityBytes = 2ull << 30; // structural: resizes phys memory
    EXPECT_THROW(runForkBenchFromWarmState(warm, ForkMode::CopyOnWrite,
                                           &cfg),
                 snapshot::SnapshotError);
}

// ----- checkpoint / restore ---------------------------------------------

TEST(CheckpointRestore, GoldenTwinsAcrossTheWholeSuite)
{
    // Every suite benchmark, both modes: a run checkpointed
    // periodically must (a) return the uninterrupted result (the
    // checkpoints observe without perturbing) and (b) resume from its
    // last checkpoint to the identical result.
    const std::string path = ::testing::TempDir() + "ovl_suite.ckpt";
    for (const ForkBenchParams &suite_params : forkBenchSuite()) {
        ForkBenchParams p = suite_params;
        p.warmupInstructions = 40'000;
        p.postForkInstructions = 100'000;
        for (ForkMode mode :
             {ForkMode::CopyOnWrite, ForkMode::OverlayOnWrite}) {
            SCOPED_TRACE(p.name +
                         (mode == ForkMode::CopyOnWrite ? "/cow"
                                                        : "/oow"));
            ForkBenchResult twin =
                runForkBench(p, mode, SystemConfig{});

            ForkBenchCheckpointOptions ckpt;
            ckpt.path = path;
            ckpt.everyTicks = 50'000;
            std::optional<ForkBenchResult> full =
                runForkBenchCheckpointed(p, mode, SystemConfig{}, ckpt);
            ASSERT_TRUE(full.has_value());
            expectSameResult(twin, *full);

            ForkBenchResult resumed = resumeForkBenchCheckpoint(path);
            expectSameResult(twin, resumed);
        }
    }
}

TEST(CheckpointRestore, OneShotStopsAndResumesToTheSameResult)
{
    ForkBenchParams p = smallParams("libq");
    ForkBenchResult twin =
        runForkBench(p, ForkMode::CopyOnWrite, SystemConfig{});

    const std::string path = ::testing::TempDir() + "ovl_oneshot.ckpt";
    ForkBenchCheckpointOptions ckpt;
    ckpt.path = path;
    ckpt.atTick = twin.forkLatency + 60'000; // mid-measurement-phase
    std::optional<ForkBenchResult> stopped =
        runForkBenchCheckpointed(p, ForkMode::CopyOnWrite,
                                 SystemConfig{}, ckpt);
    EXPECT_FALSE(stopped.has_value());
    expectSameResult(twin, resumeForkBenchCheckpoint(path));
}

// ----- malformed-input hardening ----------------------------------------

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good());
    return std::vector<std::uint8_t>(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              std::streamsize(bytes.size()));
}

/** A small but real checkpoint file to mangle. */
std::string
makeCheckpointFile()
{
    std::string path = ::testing::TempDir() + "ovl_fuzz.ckpt";
    ForkBenchParams p = forkBenchByName("libq");
    p.warmupInstructions = 20'000;
    p.postForkInstructions = 40'000;
    ForkBenchCheckpointOptions ckpt;
    ckpt.path = path;
    ckpt.atTick = 1; // first post-fork op boundary
    std::optional<ForkBenchResult> r = runForkBenchCheckpointed(
        p, ForkMode::OverlayOnWrite, SystemConfig{}, ckpt);
    EXPECT_FALSE(r.has_value());
    return path;
}

TEST(SnapshotHardening, MissingFileThrows)
{
    EXPECT_THROW(resumeForkBenchCheckpoint(::testing::TempDir() +
                                           "ovl_no_such_file.ckpt"),
                 snapshot::SnapshotError);
}

TEST(SnapshotHardening, TruncationsAlwaysThrow)
{
    const std::string path = makeCheckpointFile();
    const std::vector<std::uint8_t> good = readFileBytes(path);
    ASSERT_GT(good.size(), 64u);

    const std::string cut = ::testing::TempDir() + "ovl_cut.ckpt";
    const std::size_t lengths[] = {0,  1,  7,  8,  12, 19,
                                   20, 21, 64, good.size() / 2,
                                   good.size() - 1};
    for (std::size_t len : lengths) {
        SCOPED_TRACE("truncated to " + std::to_string(len));
        writeFileBytes(cut, {good.begin(), good.begin() + long(len)});
        EXPECT_THROW(resumeForkBenchCheckpoint(cut),
                     snapshot::SnapshotError);
    }
}

TEST(SnapshotHardening, EnvelopeCorruptionAlwaysThrows)
{
    const std::string path = makeCheckpointFile();
    const std::vector<std::uint8_t> good = readFileBytes(path);
    const std::string bad = ::testing::TempDir() + "ovl_env.ckpt";

    // Magic (8) + version (4) + payload length (8): flipping any byte
    // of the envelope must be rejected before the payload is touched.
    for (std::size_t i = 0; i < 20; ++i) {
        SCOPED_TRACE("envelope byte " + std::to_string(i));
        std::vector<std::uint8_t> mangled = good;
        mangled[i] ^= 0xFF;
        writeFileBytes(bad, mangled);
        EXPECT_THROW(resumeForkBenchCheckpoint(bad),
                     snapshot::SnapshotError);
    }
}

TEST(SnapshotHardening, FuzzedPayloadsNeverInvokeUndefinedBehavior)
{
    // Random byte flips in a System snapshot must either deserialize
    // (the flip hit a don't-care or produced an equally valid value) or
    // throw SnapshotError — never crash, hang or scribble. Load-only:
    // System::deserialize validates structure; semantic validity of a
    // corrupt-but-well-formed machine is not the snapshot layer's job.
    Scenario sc;
    snapshot::Writer w;
    sc.sys.serialize(w);
    const std::vector<std::uint8_t> good = w.takeBuffer();
    ASSERT_GT(good.size(), 256u);

    Rng rng(0xF022);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> mangled = good;
        unsigned flips = 1 + unsigned(rng.next() % 4);
        for (unsigned f = 0; f < flips; ++f) {
            std::size_t pos = std::size_t(rng.next() % mangled.size());
            std::uint8_t bit = std::uint8_t(1u << (rng.next() % 8));
            mangled[pos] ^= bit;
        }
        System fresh((SystemConfig()));
        snapshot::Reader r(mangled);
        try {
            fresh.deserialize(r);
        } catch (const snapshot::SnapshotError &) {
            // expected for most flips
        }
    }
}

} // namespace
} // namespace ovl
