/**
 * @file
 * Second-wave technique tests: checkpoint restore (rollback to any
 * captured state), backing-store accounting, overlay-matrix dynamic
 * deletion, and cross-technique interactions.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "sparse/overlay_matrix.hh"
#include "tech/checkpoint.hh"
#include "tech/speculation.hh"

namespace ovl
{
namespace
{

constexpr Addr kBase = 0x400000;

class RestoreTest : public ::testing::Test
{
  protected:
    RestoreTest() : sys(SystemConfig{}), ckpt(sys, asid = sys.createProcess())
    {
        sys.mapAnon(asid, kBase, 4 * kPageSize);
        std::uint64_t v = 100;
        sys.poke(asid, kBase, &v, 8);
        ckpt.addRange(kBase, 4 * kPageSize);
    }

    std::uint64_t
    value(Addr addr = kBase)
    {
        std::uint64_t v = 0;
        sys.peek(asid, addr, &v, 8);
        return v;
    }

    void
    store(std::uint64_t v, Addr addr = kBase)
    {
        sys.poke(asid, addr, &v, 8);
    }

    System sys;
    Asid asid;
    tech::CheckpointManager ckpt;
};

TEST_F(RestoreTest, RestoreToBaseDiscardsEverything)
{
    store(200);
    ckpt.takeCheckpoint(0);
    store(300);
    ckpt.takeCheckpoint(1000);
    store(999); // uncheckpointed tail

    ckpt.restore(0, 2000);
    EXPECT_EQ(value(), 100u);
}

TEST_F(RestoreTest, RestoreToIntermediateCheckpoint)
{
    store(200);
    ckpt.takeCheckpoint(0);
    store(300);
    ckpt.takeCheckpoint(1000);

    ckpt.restore(2, 2000);
    EXPECT_EQ(value(), 300u);
    ckpt.restore(1, 3000);
    EXPECT_EQ(value(), 200u);
    // Rolling back to 1 destroyed checkpoint 2 (linear history).
    EXPECT_EQ(ckpt.checkpointsTaken(), 1u);
}

TEST_F(RestoreTest, UncapturedTailIsDropped)
{
    store(200);
    ckpt.takeCheckpoint(0);
    store(555); // never checkpointed
    EXPECT_EQ(value(), 555u);
    ckpt.restore(1, 1000);
    EXPECT_EQ(value(), 200u);
}

TEST_F(RestoreTest, CaptureContinuesAfterRestore)
{
    store(200);
    ckpt.takeCheckpoint(0);
    ckpt.restore(0, 1000);
    store(777);
    tech::CheckpointStats stats = ckpt.takeCheckpoint(2000);
    EXPECT_EQ(stats.dirtyLines, 1u);
    EXPECT_EQ(value(), 777u);
}

TEST_F(RestoreTest, MultiLineMultiPageRoundTrip)
{
    Rng rng(5);
    std::vector<std::pair<Addr, std::uint64_t>> writes;
    for (unsigned i = 0; i < 50; ++i) {
        Addr addr = kBase + rng.below(4 * kPageSize / 8) * 8;
        std::uint64_t v = rng.next();
        store(v, addr);
        writes.push_back({addr, v});
    }
    ckpt.takeCheckpoint(0);
    // Scramble everything.
    for (auto &[addr, v] : writes)
        store(0xDEAD, addr);
    ckpt.restore(1, 1000);
    for (auto &[addr, v] : writes) {
        // Later writes in the list may overwrite earlier ones at the
        // same address; verify against a replayed host model instead.
        (void)addr;
        (void)v;
    }
    // Replay host-side to compute the expected state.
    std::vector<std::uint64_t> expect(4 * kPageSize / 8, 0);
    expect[0] = 100;
    for (auto &[addr, v] : writes)
        expect[(addr - kBase) / 8] = v;
    for (std::size_t i = 0; i < expect.size(); ++i) {
        ASSERT_EQ(value(kBase + i * 8), expect[i]) << "slot " << i;
    }
}

TEST_F(RestoreTest, BackingStoreBytesGrowWithDeltas)
{
    std::uint64_t base_bytes = ckpt.backingStoreBytes();
    EXPECT_EQ(base_bytes, 4 * kPageSize); // the arm-time image
    store(1);
    ckpt.takeCheckpoint(0);
    EXPECT_EQ(ckpt.backingStoreBytes(), base_bytes + kLineSize);
}

// --------------------- overlay-matrix dynamic delete --------------------

TEST(OverlayMatrixDelete, RemoveReclaimsWholeZeroLines)
{
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    OverlayMatrix m(sys, asid, 0x1000'0000);

    CooMatrix coo;
    coo.rows = 2;
    coo.cols = 16;
    coo.entries = {{0, 0, 1.0}, {0, 1, 2.0}, {1, 3, 3.0}};
    coo.canonicalize();
    m.build(coo);

    // Line (0, 0..7) holds two non-zeros; removing one keeps the line.
    m.remove(0, 0, 0);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
    EXPECT_TRUE(sys.lineInOverlay(asid, m.addrOf(0, 0)));

    // Removing the last non-zero reclaims the line.
    m.remove(0, 1, 1000);
    EXPECT_FALSE(sys.lineInOverlay(asid, m.addrOf(0, 0)));
    EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);

    // The other row's line is untouched.
    EXPECT_DOUBLE_EQ(m.at(1, 3), 3.0);
}

TEST(OverlayMatrixDelete, InsertAfterRemoveWorks)
{
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    OverlayMatrix m(sys, asid, 0x1000'0000);
    CooMatrix coo;
    coo.rows = 1;
    coo.cols = 8;
    coo.entries = {{0, 2, 5.0}};
    m.build(coo);

    m.remove(0, 2, 0);
    EXPECT_FALSE(sys.lineInOverlay(asid, m.addrOf(0, 2)));
    m.insert(0, 4, 6.0, 1000);
    EXPECT_TRUE(sys.lineInOverlay(asid, m.addrOf(0, 4)));
    EXPECT_DOUBLE_EQ(m.at(0, 4), 6.0);
    EXPECT_DOUBLE_EQ(m.at(0, 2), 0.0);
}

// --------------------- technique interaction ---------------------------

TEST(TechInteraction, SpeculationInsideCheckpointInterval)
{
    // A speculative region over a checkpointed range: the abort must not
    // disturb the checkpoint capture.
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    sys.mapAnon(asid, kBase, kPageSize);
    std::uint64_t v = 5;
    sys.poke(asid, kBase, &v, 8);

    tech::CheckpointManager ckpt(sys, asid);
    ckpt.addRange(kBase, kPageSize);

    std::uint64_t v2 = 6;
    sys.poke(asid, kBase, &v2, 8); // captured update

    tech::CheckpointStats stats = ckpt.takeCheckpoint(0);
    EXPECT_EQ(stats.dirtyLines, 1u);

    // Now speculate over the same page and abort.
    tech::SpeculativeRegion region(sys, asid);
    region.begin(kBase, kPageSize);
    std::uint64_t v3 = 99;
    sys.poke(asid, kBase, &v3, 8);
    region.abort(1000);

    std::uint64_t got = 0;
    sys.peek(asid, kBase, &got, 8);
    EXPECT_EQ(got, 6u);

    // Restore to the checkpoint still works.
    // Note: SpeculativeRegion::disarm cleared the page's capture bits, so
    // re-arm via a fresh restore (restore re-arms internally).
    ckpt.restore(0, 2000);
    sys.peek(asid, kBase, &got, 8);
    EXPECT_EQ(got, 5u);
}

TEST(CheckpointDaemon, PeriodicCheckpointsFireOnTheEventQueue)
{
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    sys.mapAnon(asid, kBase, kPageSize);
    tech::CheckpointManager ckpt(sys, asid);
    ckpt.addRange(kBase, kPageSize);

    EventQueue queue;
    ckpt.schedulePeriodic(queue, 10'000, 3);

    std::uint64_t v = 1;
    sys.poke(asid, kBase, &v, 8);
    queue.runUntil(10'000); // daemon fires checkpoint 1
    EXPECT_EQ(ckpt.checkpointsTaken(), 1u);

    v = 2;
    sys.poke(asid, kBase, &v, 8);
    queue.runUntil(25'000); // checkpoint 2 at t=20k
    EXPECT_EQ(ckpt.checkpointsTaken(), 2u);

    queue.drain(); // checkpoint 3; no further events
    EXPECT_EQ(ckpt.checkpointsTaken(), 3u);
    EXPECT_EQ(queue.pending(), 0u);

    // The daemon's snapshots are restorable like manual ones.
    ckpt.restore(1, queue.now());
    std::uint64_t got = 0;
    sys.peek(asid, kBase, &got, 8);
    EXPECT_EQ(got, 1u);
}

} // namespace
} // namespace ovl
