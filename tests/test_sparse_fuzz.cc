/**
 * @file
 * Randomized agreement batteries for the sparse stack: all SpMV engines
 * against the COO reference over random specs/families; CSR dynamic
 * inserts against rebuilt-from-scratch matrices; and overlay-matrix
 * insert/remove interleavings against a host-side map.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.hh"
#include "cpu/ooo_core.hh"
#include "sparse/csr.hh"
#include "sparse/overlay_matrix.hh"
#include "sparse/spmv.hh"
#include "workload/matrixgen.hh"

namespace ovl
{
namespace
{

class SparseFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SparseFuzz, EnginesAgreeOnRandomMatrices)
{
    Rng rng(GetParam());
    MatrixSpec spec;
    spec.family = MatrixFamily(rng.below(4));
    spec.rows = 64 + std::uint32_t(rng.below(4)) * 64;
    spec.cols = spec.rows;
    spec.nnz = 300 + rng.below(2000);
    spec.targetL = 1.0 + rng.uniform() * 7.0;
    spec.blockRunLines = 8 + unsigned(rng.below(120));
    spec.seed = rng.next();
    CooMatrix coo = generateMatrix(spec);

    std::vector<double> x(coo.cols);
    for (double &v : x)
        v = rng.uniform() * 2.0 - 1.0;
    std::vector<double> ref = spmvReference(coo, x);
    SpmvAddrs addrs;

    {
        System sys((SystemConfig()));
        OooCore core("core", sys);
        Asid asid = sys.createProcess();
        installVectors(sys, asid, addrs, x, coo.rows);
        OverlayMatrix m(sys, asid, addrs.aBase);
        m.build(coo);
        SpmvResult res = spmvOverlay(sys, core, m, addrs, x, 0);
        for (std::size_t i = 0; i < ref.size(); ++i)
            ASSERT_NEAR(res.y[i], ref[i], 1e-9) << "overlay row " << i;
    }
    {
        System sys((SystemConfig()));
        OooCore core("core", sys);
        Asid asid = sys.createProcess();
        installVectors(sys, asid, addrs, x, coo.rows);
        CsrMatrix csr = CsrMatrix::fromCoo(coo);
        installCsr(sys, asid, addrs, csr);
        sys.quiesce();
        SpmvResult res = spmvCsr(sys, core, asid, addrs, csr, x, 0);
        for (std::size_t i = 0; i < ref.size(); ++i)
            ASSERT_NEAR(res.y[i], ref[i], 1e-9) << "csr row " << i;
    }
}

TEST_P(SparseFuzz, CsrInsertMatchesRebuild)
{
    Rng rng(GetParam() + 40);
    MatrixSpec spec;
    spec.rows = 128;
    spec.cols = 128;
    spec.nnz = 500;
    spec.targetL = 3.0;
    spec.seed = rng.next();
    CooMatrix coo = generateMatrix(spec);
    CsrMatrix csr = CsrMatrix::fromCoo(coo);

    // Apply 60 random inserts/updates both ways.
    std::map<std::pair<std::uint32_t, std::uint32_t>, double> extra;
    for (int i = 0; i < 60; ++i) {
        std::uint32_t r = std::uint32_t(rng.below(coo.rows));
        std::uint32_t c = std::uint32_t(rng.below(coo.cols));
        double v = rng.uniform() + 0.5;
        csr.insert(r, c, v);
        extra[{r, c}] = v;
    }
    CooMatrix updated = coo;
    for (const auto &[rc, v] : extra)
        updated.entries.push_back({rc.first, rc.second, v});
    updated.canonicalize();
    CsrMatrix rebuilt = CsrMatrix::fromCoo(updated);

    ASSERT_EQ(csr.nnz(), rebuilt.nnz());
    std::vector<double> x(coo.cols);
    for (double &v : x)
        v = rng.uniform();
    std::vector<double> a = csr.spmv(x);
    std::vector<double> b = rebuilt.spmv(x);
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(a[i], b[i], 1e-9) << "row " << i;
}

TEST_P(SparseFuzz, OverlayInsertRemoveMatchesHostMap)
{
    Rng rng(GetParam() + 80);
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    OverlayMatrix m(sys, asid, 0x1000'0000);
    CooMatrix coo;
    coo.rows = 32;
    coo.cols = 64;
    coo.entries = {{0, 0, 1.0}};
    m.build(coo);

    std::map<std::pair<std::uint32_t, std::uint32_t>, double> host;
    host[{0, 0}] = 1.0;
    Tick t = 0;
    for (int step = 0; step < 400; ++step) {
        std::uint32_t r = std::uint32_t(rng.below(coo.rows));
        std::uint32_t c = std::uint32_t(rng.below(coo.cols));
        if (rng.chance(0.6)) {
            double v = rng.uniform() + 0.5;
            t = m.insert(r, c, v, t);
            host[{r, c}] = v;
        } else {
            t = m.remove(r, c, t);
            host.erase({r, c});
        }
        if (step % 50 != 0)
            continue;
        for (std::uint32_t rr = 0; rr < coo.rows; ++rr) {
            for (std::uint32_t cc = 0; cc < coo.cols; ++cc) {
                auto it = host.find({rr, cc});
                double expect = it == host.end() ? 0.0 : it->second;
                ASSERT_DOUBLE_EQ(m.at(rr, cc), expect)
                    << "(" << rr << "," << cc << ") step " << step;
            }
        }
    }
    // Lines whose elements were all removed must have been reclaimed.
    std::uint64_t mapped_lines = 0;
    for (std::uint32_t rr = 0; rr < coo.rows; ++rr) {
        for (std::uint32_t cc = 0; cc < coo.cols; cc += 8)
            mapped_lines += sys.lineInOverlay(asid, m.addrOf(rr, cc));
    }
    std::set<std::uint64_t> host_lines;
    for (const auto &[rc, v] : host) {
        host_lines.insert(
            (m.addrOf(rc.first, rc.second) & ~kLineMask));
    }
    EXPECT_EQ(mapped_lines, host_lines.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseFuzz,
                         ::testing::Values(7, 77, 777, 7777));

} // namespace
} // namespace ovl
