/**
 * @file
 * Tests for the workload generators: the matrix generator must hit its
 * target L across the whole sweep (parameterized), and the fork
 * benchmarks must behave per their type taxonomy.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "workload/forkbench.hh"
#include "workload/matrixgen.hh"

namespace ovl
{
namespace
{

TEST(MatrixGen, SuiteHas87MatricesSortedByL)
{
    std::vector<MatrixSpec> suite = sparseSuite87();
    ASSERT_EQ(suite.size(), 87u);
    for (std::size_t i = 1; i < suite.size(); ++i)
        EXPECT_LE(suite[i - 1].targetL, suite[i].targetL);
    EXPECT_EQ(suite.front().name, "poisson3Db");
    EXPECT_EQ(suite.back().name, "raefsky4");
    // The paper's split: 34 of 87 matrices have L > 4.5.
    unsigned high = 0;
    for (const MatrixSpec &s : suite)
        high += s.targetL > 4.5;
    EXPECT_EQ(high, 34u);
}

TEST(MatrixGen, UniformSparsityIsFullyDenseLines)
{
    CooMatrix coo = generateUniformSparsity(64, 64, 0.5, 3);
    MatrixStats stats = analyzeMatrix(coo, 64);
    EXPECT_DOUBLE_EQ(stats.locality, 8.0);
    // Roughly half the lines are zero.
    std::uint64_t total_lines = 64 * 64 / 8;
    EXPECT_NEAR(double(stats.nonZeroBlocks), total_lines * 0.5,
                total_lines * 0.1);
}

TEST(MatrixGen, ZeroFractionExtremes)
{
    CooMatrix dense = generateUniformSparsity(16, 16, 0.0, 1);
    EXPECT_EQ(dense.nnz(), 16u * 16);
    CooMatrix empty = generateUniformSparsity(16, 16, 1.0, 1);
    EXPECT_EQ(empty.nnz(), 0u);
}

/** Parameterized: realized L must track the target across the sweep. */
class MatrixGenSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(MatrixGenSweep, RealizedLocalityMatchesTarget)
{
    double target = GetParam();
    for (auto family :
         {MatrixFamily::Scattered, MatrixFamily::Banded,
          MatrixFamily::BlockDense, MatrixFamily::PowerLaw}) {
        MatrixSpec spec;
        spec.family = family;
        spec.rows = 512;
        spec.cols = 512;
        spec.nnz = 20'000;
        spec.targetL = target;
        spec.seed = 7 + unsigned(family);
        CooMatrix coo = generateMatrix(spec);
        MatrixStats stats = analyzeMatrix(coo, 64);
        EXPECT_NEAR(stats.locality, target, target * 0.12)
            << "family " << int(family);
        EXPECT_GT(stats.nnz, spec.nnz * 9 / 10);
    }
}

INSTANTIATE_TEST_SUITE_P(LocalitySweep, MatrixGenSweep,
                         ::testing::Values(1.05, 1.5, 2.0, 3.0, 4.0, 4.5,
                                           5.5, 6.5, 7.5, 8.0));

TEST(MatrixGen, EntriesWithinBounds)
{
    for (unsigned fam = 0; fam < 4; ++fam) {
        MatrixSpec spec;
        spec.family = MatrixFamily(fam);
        spec.rows = 256;
        spec.cols = 256;
        spec.nnz = 5000;
        spec.targetL = 3.0;
        CooMatrix coo = generateMatrix(spec);
        for (const CooEntry &e : coo.entries) {
            ASSERT_LT(e.row, coo.rows);
            ASSERT_LT(e.col, coo.cols);
            ASSERT_NE(e.value, 0.0);
        }
    }
}

TEST(MatrixGen, DeterministicForFixedSeed)
{
    MatrixSpec spec;
    spec.nnz = 1000;
    CooMatrix a = generateMatrix(spec);
    CooMatrix b = generateMatrix(spec);
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (std::size_t i = 0; i < a.entries.size(); ++i) {
        EXPECT_EQ(a.entries[i].row, b.entries[i].row);
        EXPECT_EQ(a.entries[i].col, b.entries[i].col);
        EXPECT_DOUBLE_EQ(a.entries[i].value, b.entries[i].value);
    }
}

TEST(ForkBench, SuiteHasFifteenNamedBenchmarks)
{
    const auto &suite = forkBenchSuite();
    ASSERT_EQ(suite.size(), 15u);
    unsigned per_type[4] = {0, 0, 0, 0};
    for (const auto &p : suite) {
        ASSERT_GE(p.type, 1u);
        ASSERT_LE(p.type, 3u);
        ++per_type[p.type];
    }
    EXPECT_EQ(per_type[1], 5u);
    EXPECT_EQ(per_type[2], 5u);
    EXPECT_EQ(per_type[3], 5u);
    EXPECT_EQ(forkBenchByName("cactus").type, 2u);
    EXPECT_EQ(forkBenchByName("cactus").pattern, WritePattern::Clustered);
    EXPECT_EQ(forkBenchByName("lbm").pattern, WritePattern::Streaming);
}

/** A scaled-down benchmark config so the test runs in milliseconds. */
ForkBenchParams
scaledDown(const char *name)
{
    ForkBenchParams p = forkBenchByName(name);
    p.warmupInstructions = 40'000;
    p.postForkInstructions = 250'000;
    p.footprintPages /= 4;
    p.hotPages /= 4;
    p.dirtyPages = std::max<std::uint64_t>(8, p.dirtyPages / 4);
    return p;
}

TEST(ForkBench, Type3OverlaySavesMemory)
{
    ForkBenchParams p = scaledDown("mcf");
    ForkBenchResult cow = runForkBench(p, ForkMode::CopyOnWrite,
                                       SystemConfig{});
    ForkBenchResult oow = runForkBench(p, ForkMode::OverlayOnWrite,
                                       SystemConfig{});
    // Sparse dirtied pages: overlays need a small fraction of the
    // memory page copies need (Figure 8, Type 3).
    EXPECT_LT(oow.additionalMemoryMB, cow.additionalMemoryMB * 0.6);
    EXPECT_GT(cow.cowFaults, 0u);
    EXPECT_GT(oow.overlayingWrites, 0u);
    EXPECT_EQ(oow.cowFaults, 0u);
}

TEST(ForkBench, Type2MemoryIsComparable)
{
    ForkBenchParams p = scaledDown("lbm");
    ForkBenchResult cow = runForkBench(p, ForkMode::CopyOnWrite,
                                       SystemConfig{});
    ForkBenchResult oow = runForkBench(p, ForkMode::OverlayOnWrite,
                                       SystemConfig{});
    // Nearly all lines of each dirtied page are written: both schemes
    // consume about the same memory (Figure 8, Type 2).
    EXPECT_GT(oow.additionalMemoryMB, cow.additionalMemoryMB * 0.7);
    EXPECT_LT(oow.additionalMemoryMB, cow.additionalMemoryMB * 1.6);
}

TEST(ForkBench, DeterministicAcrossRuns)
{
    ForkBenchParams p = scaledDown("libq");
    ForkBenchResult a = runForkBench(p, ForkMode::CopyOnWrite,
                                     SystemConfig{});
    ForkBenchResult b = runForkBench(p, ForkMode::CopyOnWrite,
                                     SystemConfig{});
    EXPECT_DOUBLE_EQ(a.cpi, b.cpi);
    EXPECT_DOUBLE_EQ(a.additionalMemoryMB, b.additionalMemoryMB);
}

} // namespace
} // namespace ovl
