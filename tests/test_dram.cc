/**
 * @file
 * Tests for the DDR3 timing model and the FR-FCFS/write-buffer
 * controller (Table 2 parameters).
 */

#include <gtest/gtest.h>

#include <set>

#include "dram/dram.hh"

namespace ovl
{
namespace
{

DramTimingParams
params()
{
    return DramTimingParams{};
}

TEST(DramModel, RowHitIsFasterThanRowMiss)
{
    DramModel dram("dram", params());
    // First access to a closed bank: activate + CAS.
    Tick first = dram.accessLatency(0x0, false, 0);
    // Same row: row hit.
    Tick hit = dram.access(0x40, false, 1'000'000) - 1'000'000;
    // Different row, same bank: precharge + activate + CAS.
    Addr conflict_addr = params().rowBufferBytes * params().numBanks;
    Tick conflict = dram.access(conflict_addr, false, 2'000'000) - 2'000'000;
    EXPECT_LT(hit, first);
    EXPECT_LT(first, conflict);
    EXPECT_EQ(dram.rowHits(), 1u);
    EXPECT_EQ(dram.rowConflicts(), 1u);
}

TEST(DramModel, RowHitLatencyMatchesTiming)
{
    DramModel dram("dram", params());
    dram.access(0x0, false, 0); // open the row
    Tick hit = dram.access(0x40, false, 10'000) - 10'000;
    DramTimingParams p = params();
    EXPECT_EQ(hit, p.toCpu(p.tCL + p.burstClocks()));
}

TEST(DramModel, BankMappingInterleaves)
{
    DramModel dram("dram", params());
    // Consecutive row-buffer-sized chunks land in different banks.
    unsigned b0 = dram.bankOf(0);
    unsigned b1 = dram.bankOf(params().rowBufferBytes);
    EXPECT_NE(b0, b1);
    // Within one row buffer, the bank does not change.
    EXPECT_EQ(dram.bankOf(0), dram.bankOf(params().rowBufferBytes - 64));
    // All banks are reachable.
    std::set<unsigned> banks;
    for (unsigned i = 0; i < params().numBanks; ++i)
        banks.insert(dram.bankOf(Addr(i) * params().rowBufferBytes));
    EXPECT_EQ(banks.size(), params().numBanks);
}

TEST(DramModel, BusSerializesConcurrentBursts)
{
    DramModel dram("dram", params());
    // Two accesses to different banks issued at the same tick cannot
    // both finish at the single-burst latency: the data bus serializes.
    Tick done_a = dram.access(0, false, 0);
    Tick done_b = dram.access(params().rowBufferBytes, false, 0);
    EXPECT_GE(done_b, done_a + params().toCpu(params().burstClocks()));
}

TEST(DramModel, BankBusyDelaysNextAccess)
{
    DramModel dram("dram", params());
    Tick done_a = dram.access(0, false, 0);
    // Same bank, same row, issued immediately: must wait for the bank.
    Tick done_b = dram.access(64, false, 0);
    EXPECT_GT(done_b, done_a);
}

TEST(DramModel, TimeNeverGoesBackwards)
{
    DramModel dram("dram", params());
    Tick t = 0;
    for (int i = 0; i < 100; ++i) {
        Tick done = dram.access(Addr(i) * 64 * 37, i % 3 == 0, t);
        EXPECT_GE(done, t);
        t = done;
    }
}

TEST(DramController, ReadAddsControllerOverhead)
{
    DramController ctrl("ctrl", params());
    Tick done = ctrl.read(0, 0);
    DramTimingParams p = params();
    EXPECT_GE(done, p.controllerOverhead +
                        p.toCpu(p.tRCD + p.tCL + p.burstClocks()));
}

TEST(DramController, WritesAreBufferedNotImmediate)
{
    DramController ctrl("ctrl", params());
    Tick accept = ctrl.enqueueWrite(0, 0);
    // Acceptance is cheap (no DRAM access on the critical path).
    EXPECT_LE(accept, params().controllerOverhead);
    EXPECT_EQ(ctrl.writeBufferOccupancy(), 1u);
    EXPECT_EQ(ctrl.dram().rowHits() + ctrl.dram().rowConflicts(), 0u);
}

TEST(DramController, BufferDrainsWhenFull)
{
    DramController ctrl("ctrl", params(), 8);
    for (int i = 0; i < 7; ++i)
        ctrl.enqueueWrite(Addr(i) * 64, 0);
    EXPECT_EQ(ctrl.writeBufferOccupancy(), 7u);
    EXPECT_EQ(ctrl.drains(), 0u);
    ctrl.enqueueWrite(7 * 64, 0);
    EXPECT_EQ(ctrl.writeBufferOccupancy(), 0u);
    EXPECT_EQ(ctrl.drains(), 1u);
}

TEST(DramController, ReadsStallBehindDrain)
{
    DramController ctrl("ctrl", params(), 4);
    for (int i = 0; i < 4; ++i)
        ctrl.enqueueWrite(Addr(i) * params().rowBufferBytes, 0);
    // The drain is now occupying DRAM; an immediate read waits.
    Tick stalled = ctrl.read(0x100000, 1) - 1;
    DramController fresh("fresh", params(), 4);
    Tick unstalled = fresh.read(0x100000, 1) - 1;
    EXPECT_GT(stalled, unstalled);
}

TEST(DramController, ExplicitDrainEmptiesBuffer)
{
    DramController ctrl("ctrl", params());
    ctrl.enqueueWrite(0, 0);
    ctrl.enqueueWrite(64, 0);
    Tick done = ctrl.drainWrites(100);
    EXPECT_GE(done, 100u);
    EXPECT_EQ(ctrl.writeBufferOccupancy(), 0u);
    // Draining an empty buffer is a no-op.
    EXPECT_EQ(ctrl.drainWrites(done), done);
}

} // namespace
} // namespace ovl
